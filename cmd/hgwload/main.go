// Command hgwload is the load generator for hgwd: it drives the
// measurement service with configurable request mixes and reports what
// the reuse stack (DESIGN.md §15) did about them. It is both a
// benchmark — its reuse scenario emits BENCH_pr<N>.json trajectory
// rows — and a regression test for queue, cache and coalescing
// behavior under heavy traffic (CI runs a duplicate-heavy mix against
// a live daemon and asserts the coalesce and cache-hit counters moved).
//
// Two scenarios:
//
//	-scenario mix (default) fires -requests jobs at -concurrency from a
//	seeded schedule in which a -dup fraction repeats an earlier spec,
//	then reports throughput, latency percentiles, per-status counts and
//	the server's /v1/stats delta (how many requests were served by the
//	cache tiers, coalesced onto an in-flight run, or actually executed).
//
//	-scenario reuse measures the reuse stack end to end with four
//	timed runs: a cold fleet job, the identical job re-submitted to a
//	freshly restarted daemon sharing the same -cache-dir (served from
//	the persistent result cache), the fleet grown by one shard at
//	constant per-shard size (every surviving shard served from the
//	shard memo store), and the grown fleet against an empty cache dir
//	(the memo run's cold control). -benchjson writes the four timings
//	as hgbench-shaped rows for the benchdiff trajectory gate.
//
// With -addr empty, hgwload self-serves: it starts an in-process hgwd
// on a loopback port (required for the reuse scenario, which restarts
// the daemon to prove persistence). Examples:
//
//	hgwload -requests 64 -concurrency 8 -dup 0.7 -fleet 128 -shards 4
//	hgwload -addr 127.0.0.1:8080 -requests 100 -dup 1 -json
//	hgwload -scenario reuse -fleet 1024 -shards 8 -benchjson -benchout BENCH_load.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hgw/internal/service"
)

var (
	addr        = flag.String("addr", "", "target hgwd address (host:port); empty self-serves an in-process daemon")
	scenario    = flag.String("scenario", "mix", "mix | reuse")
	requests    = flag.Int("requests", 64, "total requests to issue (mix)")
	concurrency = flag.Int("concurrency", 8, "in-flight client requests (mix)")
	dup         = flag.Float64("dup", 0.5, "fraction of requests repeating an earlier spec (mix)")
	loadSeed    = flag.Int64("loadseed", 1, "rng seed for the request schedule (mix)")
	expID       = flag.String("exp", "udp1", "experiment id the specs request")
	fleet       = flag.Int("fleet", 128, "fleet size per spec (reuse default: 1024)")
	shards      = flag.Int("shards", 4, "shard count per spec (reuse default: 8)")
	iters       = flag.Int("iters", 1, "iterations per device")
	seedBase    = flag.Int64("seed", 1, "base spec seed; fresh specs increment from it")
	workers     = flag.Int("workers", 2, "self-served daemon's worker pool size")
	queueDepth  = flag.Int("queue", 64, "self-served daemon's queue depth")
	cacheDir    = flag.String("cache-dir", "", "self-served daemon's persistent cache dir (reuse: empty uses a temp dir)")
	jsonOut     = flag.Bool("json", false, "emit the mix report as JSON")
	benchJSON   = flag.Bool("benchjson", false, "write the reuse rows as a bench trajectory file")
	benchOut    = flag.String("benchout", "BENCH_load.json", "bench trajectory output path (-benchjson)")
	pollEvery   = flag.Duration("poll", 5*time.Millisecond, "job status poll interval")
	timeout     = flag.Duration("timeout", 5*time.Minute, "per-request completion timeout")
)

func main() {
	flag.Parse()
	log.SetFlags(0)
	switch *scenario {
	case "mix":
		runMixScenario()
	case "reuse":
		runReuseScenario()
	default:
		log.Fatalf("hgwload: unknown -scenario %q (want mix or reuse)", *scenario)
	}
}

// client drives one hgwd over HTTP.
type client struct {
	base string
	hc   *http.Client
}

func newClient(hostport string) *client {
	return &client{base: "http://" + hostport, hc: &http.Client{Timeout: 30 * time.Second}}
}

func (c *client) getJSON(path string, v any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (c *client) stats() (service.Stats, error) {
	var st service.Stats
	err := c.getJSON("/v1/stats", &st)
	return st, err
}

// submit POSTs spec, retrying 429s per the server's Retry-After hint
// (capped so load tests re-probe quickly) until the deadline.
func (c *client) submit(spec service.Spec, deadline time.Time) (service.View, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return service.View{}, err
	}
	for {
		resp, err := c.hc.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return service.View{}, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			retry := time.Second
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				retry = time.Duration(s) * time.Second
			}
			if retry > 2*time.Second {
				retry = 2 * time.Second
			}
			resp.Body.Close()
			if time.Now().Add(retry).After(deadline) {
				return service.View{}, fmt.Errorf("queue full past the deadline")
			}
			time.Sleep(retry)
			continue
		}
		var view service.View
		decErr := json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			return view, fmt.Errorf("POST /v1/jobs: status %d", resp.StatusCode)
		}
		return view, decErr
	}
}

// wait polls the job until it reaches a terminal state.
func (c *client) wait(id string, deadline time.Time) (service.View, error) {
	for {
		var view service.View
		if err := c.getJSON("/v1/jobs/"+id, &view); err != nil {
			return view, err
		}
		//hgwlint:allow exhaustlint polling loop: the non-terminal states fall through and poll again
		switch view.Status {
		case service.StatusDone:
			return view, nil
		case service.StatusFailed, service.StatusCanceled:
			return view, fmt.Errorf("job %s %s: %s", id, view.Status, view.Error)
		}
		if time.Now().After(deadline) {
			return view, fmt.Errorf("job %s still %s at the deadline", id, view.Status)
		}
		time.Sleep(*pollEvery)
	}
}

// run submits one spec and follows it to completion.
func (c *client) run(spec service.Spec) (service.View, time.Duration, error) {
	start := time.Now()
	deadline := start.Add(*timeout)
	view, err := c.submit(spec, deadline)
	if err == nil && !isTerminal(view.Status) {
		view, err = c.wait(view.ID, deadline)
	}
	return view, time.Since(start), err
}

func isTerminal(s service.Status) bool {
	return s == service.StatusDone || s == service.StatusFailed || s == service.StatusCanceled
}

// daemon is a self-served in-process hgwd.
type daemon struct {
	svc *service.Service
	srv *http.Server
	c   *client
}

func startDaemon(dir string) *daemon {
	svc := service.New(service.Config{Workers: *workers, QueueDepth: *queueDepth, CacheDir: dir})
	for _, warn := range svc.Warnings() {
		log.Printf("hgwload: daemon warning: %s", warn)
	}
	svc.Start(context.Background())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("hgwload: listen: %v", err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	return &daemon{svc: svc, srv: srv, c: newClient(ln.Addr().String())}
}

// stop shuts the daemon down the way SIGTERM would: HTTP first, then
// the service (which flushes the persistent tiers' LRU indexes).
func (d *daemon) stop() {
	d.srv.Close()
	d.svc.Shutdown()
}

func specFor(seed int64) service.Spec {
	return service.Spec{
		IDs:        []string{*expID},
		Seed:       seed,
		Iterations: *iters,
		Fleet:      *fleet,
		Shards:     *shards,
	}
}

// statsDelta is the server-side story of one load run: how the
// requests were actually served.
type statsDelta struct {
	CacheHits     uint64 `json:"cache_hits"`
	CacheDiskHits uint64 `json:"cache_disk_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	MemoHits      uint64 `json:"memo_hits"`
	MemoMisses    uint64 `json:"memo_misses"`
	Coalesced     uint64 `json:"coalesced"`
	JobsExecuted  uint64 `json:"jobs_executed"`
}

func delta(before, after service.Stats) statsDelta {
	return statsDelta{
		CacheHits:     after.Cache.Hits - before.Cache.Hits,
		CacheDiskHits: after.Cache.DiskHits - before.Cache.DiskHits,
		CacheMisses:   after.Cache.Misses - before.Cache.Misses,
		MemoHits:      (after.Memo.MemHits + after.Memo.DiskHits) - (before.Memo.MemHits + before.Memo.DiskHits),
		MemoMisses:    after.Memo.Misses - before.Memo.Misses,
		Coalesced:     after.Coalesced - before.Coalesced,
		JobsExecuted:  after.JobsExecuted - before.JobsExecuted,
	}
}

// mixReport is the mix scenario's output (-json emits it verbatim).
type mixReport struct {
	Scenario    string             `json:"scenario"`
	Requests    int                `json:"requests"`
	Concurrency int                `json:"concurrency"`
	DupRatio    float64            `json:"dup_ratio"`
	WallMS      float64            `json:"wall_ms"`
	ReqPerSec   float64            `json:"req_per_sec"`
	Errors      int                `json:"errors"`
	Statuses    map[string]int     `json:"statuses"`
	Cached      int                `json:"cached"`
	Coalesced   int                `json:"coalesced"`
	LatencyMS   map[string]float64 `json:"latency_ms"`
	StatsDelta  statsDelta         `json:"stats_delta"`
}

func runMixScenario() {
	var c *client
	if *addr != "" {
		c = newClient(*addr)
	} else {
		d := startDaemon(*cacheDir)
		defer d.stop()
		c = d.c
	}
	before, err := c.stats()
	if err != nil {
		log.Fatalf("hgwload: reading /v1/stats: %v", err)
	}

	// The request schedule is drawn up front from -loadseed, so a given
	// flag set always issues the same specs in the same order: request
	// i either repeats a uniformly-chosen earlier spec (probability
	// -dup) or introduces the next fresh seed.
	rng := rand.New(rand.NewSource(*loadSeed))
	seeds := make([]int64, *requests)
	fresh := int64(0)
	for i := range seeds {
		if fresh > 0 && rng.Float64() < *dup {
			seeds[i] = *seedBase + rng.Int63n(fresh)
		} else {
			seeds[i] = *seedBase + fresh
			fresh++
		}
	}

	views := make([]service.View, *requests)
	lats := make([]time.Duration, *requests)
	errs := make([]error, *requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				views[i], lats[i], errs[i] = c.run(specFor(seeds[i]))
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	after, err := c.stats()
	if err != nil {
		log.Fatalf("hgwload: reading /v1/stats: %v", err)
	}

	rep := mixReport{
		Scenario:    "mix",
		Requests:    *requests,
		Concurrency: *concurrency,
		DupRatio:    *dup,
		WallMS:      float64(wall) / float64(time.Millisecond),
		ReqPerSec:   float64(*requests) / wall.Seconds(),
		Statuses:    map[string]int{},
		LatencyMS:   map[string]float64{},
		StatsDelta:  delta(before, after),
	}
	var ok []time.Duration
	for i := range views {
		if errs[i] != nil {
			rep.Errors++
			log.Printf("hgwload: request %d: %v", i, errs[i])
			continue
		}
		rep.Statuses[string(views[i].Status)]++
		if views[i].Cached {
			rep.Cached++
		}
		if views[i].Coalesced {
			rep.Coalesced++
		}
		ok = append(ok, lats[i])
	}
	if len(ok) > 0 {
		sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(ok)-1))
			return float64(ok[idx]) / float64(time.Millisecond)
		}
		var sum time.Duration
		for _, l := range ok {
			sum += l
		}
		rep.LatencyMS["p50"] = pct(0.50)
		rep.LatencyMS["p90"] = pct(0.90)
		rep.LatencyMS["p99"] = pct(0.99)
		rep.LatencyMS["max"] = float64(ok[len(ok)-1]) / float64(time.Millisecond)
		rep.LatencyMS["mean"] = float64(sum) / float64(len(ok)) / float64(time.Millisecond)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Printf("hgwload mix: %d requests, concurrency %d, dup %.2f\n",
			rep.Requests, rep.Concurrency, rep.DupRatio)
		fmt.Printf("  wall %.1f ms  (%.1f req/s), errors %d\n", rep.WallMS, rep.ReqPerSec, rep.Errors)
		fmt.Printf("  latency ms: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f  mean %.1f\n",
			rep.LatencyMS["p50"], rep.LatencyMS["p90"], rep.LatencyMS["p99"],
			rep.LatencyMS["max"], rep.LatencyMS["mean"])
		fmt.Printf("  served: %d cached, %d coalesced, %d executed (cache hits %d mem + %d disk, memo hits %d)\n",
			rep.Cached, rep.Coalesced, rep.StatsDelta.JobsExecuted,
			rep.StatsDelta.CacheHits, rep.StatsDelta.CacheDiskHits, rep.StatsDelta.MemoHits)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// benchRow mirrors cmd/hgbench's benchEntry, so reuse rows merge into
// the same BENCH_pr<N>.json trajectory files.
type benchRow struct {
	Name      string             `json:"name"`
	NsPerOp   int64              `json:"ns_op"`
	AllocsOp  uint64             `json:"allocs_op"`
	BytesOp   uint64             `json:"bytes_op"`
	Err       string             `json:"err,omitempty"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	Timestamp string             `json:"timestamp"`
}

func runReuseScenario() {
	if flagUnset("fleet") {
		*fleet = 1024
	}
	if flagUnset("shards") {
		*shards = 8
	}
	dir := *cacheDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "hgwload-reuse-"); err != nil {
			log.Fatalf("hgwload: %v", err)
		}
		defer os.RemoveAll(dir)
	}
	coldDir, err := os.MkdirTemp("", "hgwload-reuse-cold-")
	if err != nil {
		log.Fatalf("hgwload: %v", err)
	}
	defer os.RemoveAll(coldDir)

	// MaxProcs 1 keeps the cold runs serial, so the recorded ratios
	// measure reuse, not how many cores the recording machine had.
	spec := specFor(*seedBase)
	spec.MaxProcs = 1
	grown := spec
	grown.Fleet += spec.Fleet / spec.Shards
	grown.Shards++

	stamp := time.Now().UTC().Format(time.RFC3339)
	var rows []benchRow
	fail := false
	row := func(name string, d time.Duration, metrics map[string]float64, err error) {
		r := benchRow{Name: name, NsPerOp: d.Nanoseconds(), Metrics: metrics, Timestamp: stamp}
		if err != nil {
			r.Err = err.Error()
			fail = true
			log.Printf("hgwload: %s: %v", name, err)
		}
		rows = append(rows, r)
	}

	// Cold: first sight of the spec, populates both persistent tiers.
	d1 := startDaemon(dir)
	coldView, coldDur, err := d1.c.run(spec)
	if err == nil && coldView.Cached {
		err = fmt.Errorf("cold run served from cache; the cache dir was not empty")
	}
	row("hgwload/reuse/cold", coldDur, nil, err)
	d1.stop()

	// Warm: identical spec against a restarted daemon on the same dir —
	// served from the persistent result cache, no simulation.
	d2 := startDaemon(dir)
	warmBefore, _ := d2.c.stats()
	warmView, warmDur, err := d2.c.run(spec)
	warmAfter, _ := d2.c.stats()
	wd := delta(warmBefore, warmAfter)
	if err == nil && !warmView.Cached {
		err = fmt.Errorf("warm re-submit missed the persistent cache")
	}
	if err == nil && wd.CacheDiskHits == 0 {
		err = fmt.Errorf("warm re-submit hit memory, not disk; restart persistence unproven")
	}
	row("hgwload/reuse/warm_disk", warmDur, map[string]float64{
		"speedup_vs_cold": ratio(coldDur, warmDur),
		"disk_hits":       float64(wd.CacheDiskHits),
	}, err)

	// Memo: grow the fleet by one shard at constant per-shard size; the
	// surviving shards replay from the shard memo store (read back from
	// disk — the daemon restarted since they were recorded).
	memoBefore, _ := d2.c.stats()
	memoView, memoDur, err := d2.c.run(grown)
	memoAfter, _ := d2.c.stats()
	md := delta(memoBefore, memoAfter)
	if err == nil && memoView.Cached {
		err = fmt.Errorf("grown fleet served from the result cache; memo not exercised")
	}
	if err == nil && md.MemoHits < uint64(spec.Shards) {
		err = fmt.Errorf("grown fleet reused %d shards; want the %d surviving ones", md.MemoHits, spec.Shards)
	}
	d2.stop()

	// Memo-cold control: the same grown fleet with nothing to reuse.
	d3 := startDaemon(coldDir)
	_, memoColdDur, cerr := d3.c.run(grown)
	d3.stop()
	row("hgwload/reuse/memo", memoDur, map[string]float64{
		"speedup_vs_cold": ratio(memoColdDur, memoDur),
		"memo_hits":       float64(md.MemoHits),
	}, err)
	row("hgwload/reuse/memo_cold", memoColdDur, nil, cerr)

	fmt.Printf("hgwload reuse (%s, fleet %d/%d shards, maxprocs 1):\n", *expID, spec.Fleet, spec.Shards)
	fmt.Printf("  cold       %10.1f ms\n", ms(coldDur))
	fmt.Printf("  warm disk  %10.1f ms  (%.0fx vs cold, %d disk hits)\n",
		ms(warmDur), ratio(coldDur, warmDur), wd.CacheDiskHits)
	fmt.Printf("  memo grown %10.1f ms  (%.1fx vs its cold control, %d shard replays)\n",
		ms(memoDur), ratio(memoColdDur, memoDur), md.MemoHits)
	fmt.Printf("  memo cold  %10.1f ms\n", ms(memoColdDur))

	if *benchJSON {
		raw, err := json.MarshalIndent(rows, "", " ")
		if err != nil {
			log.Fatalf("hgwload: %v", err)
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(*benchOut, raw, 0o644); err != nil {
			log.Fatalf("hgwload: %v", err)
		}
		fmt.Printf("  wrote %d rows to %s\n", len(rows), *benchOut)
	}
	if fail {
		os.Exit(1)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func ratio(num, den time.Duration) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// flagUnset reports whether the user left name at its default, letting
// the reuse scenario pick its own (larger) geometry defaults.
func flagUnset(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return !set
}
