// Command hgwd serves the experiment registry as a measurement
// service: clients POST experiment requests as jobs, a worker pool
// drains them through hgw.Run, and a content-addressed cache answers
// repeated deterministic requests with byte-identical results without
// re-simulating.
//
//	hgwd -addr 127.0.0.1:8080
//	curl localhost:8080/v1/experiments
//	curl -X POST localhost:8080/v1/jobs -d '{"ids":["udp3"],"seed":1,"fleet":1000,"shards":8}'
//	curl -X POST localhost:8080/v1/jobs \
//	     -d '{"ids":["udp3"],"seed":1,"fleet":1000,"shards":8,"faults":{"rate":0.5}}'
//	curl localhost:8080/v1/jobs/job-1
//	curl -X DELETE localhost:8080/v1/jobs/job-1   # cancel (single-flight aware)
//	curl localhost:8080/v1/jobs/job-1/stream
//	curl localhost:8080/v1/stats
//	curl localhost:8080/metrics              # Prometheus exposition
//
// -cache-dir persists the reuse stack (DESIGN.md §15): completed
// results and fleet shard memos are written as content-addressed,
// checksummed files and served across restarts. Identical jobs
// submitted while one is in flight coalesce onto that execution
// instead of enqueuing. An unusable cache dir degrades the daemon to
// memory-only with a logged warning.
//
// The optional "faults" spec field turns on deterministic fault
// injection for the job; all-zero (or absent) fault specs leave the
// job's cache key — and therefore cache sharing with pre-fault
// clients — unchanged. A full queue answers 429 with a Retry-After
// header estimating when the pool will have drained enough to accept
// the job; DESIGN.md §8 documents the client backoff contract.
//
// -pprof additionally serves the net/http/pprof profiling handlers
// under /debug/pprof/ (off by default: profiling endpoints expose
// stack traces and should be opted into).
//
// SIGINT/SIGTERM shut the daemon down gracefully: the listener stops,
// in-flight simulations are interrupted mid-run (their jobs finish
// canceled), and queued jobs are canceled before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"hgw/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	workers := flag.Int("workers", 2, "worker pool size (concurrent jobs)")
	queue := flag.Int("queue", 16, "job queue depth (submissions past it get 429)")
	cache := flag.Int("cache", 64, "result cache capacity in completed runs (LRU)")
	cacheDir := flag.String("cache-dir", "", "persist completed results and fleet shard memos under this directory (survives restarts; empty = memory-only)")
	pprofOn := flag.Bool("pprof", false, "serve profiling handlers under /debug/pprof/")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	svc := service.New(service.Config{Workers: *workers, QueueDepth: *queue,
		CacheEntries: *cache, CacheDir: *cacheDir})
	// Degradations (an unusable -cache-dir runs memory-only) are warnings,
	// not fatals: a gateway fleet's measurement plane should keep serving
	// even when its disk does not.
	for _, warn := range svc.Warnings() {
		log.Printf("hgwd: warning: %s", warn)
	}
	svc.Start(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("hgwd: listen: %v", err)
	}
	// The API mux is built by the service; profiling handlers mount on
	// an outer mux only when asked for, so the default surface stays
	// API-only.
	handler := svc.Handler()
	if *pprofOn {
		outer := http.NewServeMux()
		outer.Handle("/", handler)
		outer.HandleFunc("GET /debug/pprof/", pprof.Index)
		outer.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		handler = outer
		log.Print("hgwd: pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Handler: handler}
	go func() {
		<-ctx.Done()
		log.Print("hgwd: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("hgwd: http shutdown: %v", err)
		}
	}()

	dirDesc := *cacheDir
	if dirDesc == "" {
		dirDesc = "memory-only"
	}
	log.Printf("hgwd: listening on %s (%d workers, queue %d, cache %d, cache-dir %s)",
		ln.Addr(), *workers, *queue, *cache, dirDesc)
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("hgwd: serve: %v", err)
	}
	svc.Shutdown()
	log.Print("hgwd: stopped")
}
