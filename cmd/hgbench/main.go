// Command hgbench regenerates every table and figure of the paper's
// evaluation section and prints them in the paper's style, together
// with the population statistics the prose quotes. With -markdown it
// emits an EXPERIMENTS.md-style paper-vs-measured report.
//
//	hgbench                       # everything, quick settings
//	hgbench -exp udp1,tcp4        # a subset
//	hgbench -iters 100 -bytes 100000000   # paper-strength settings
package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"hgw"
	"hgw/internal/probe"
)

var (
	expFlag  = flag.String("exp", "all", "comma-separated experiment ids (udp1,udp2,udp3,udp4,udp5,tcp1,tcp2,tcp4,icmp,sctp,dccp,dns,quirks) or 'all'")
	iters    = flag.Int("iters", 5, "iterations per device (paper: 100)")
	bytesF   = flag.Int("bytes", 8<<20, "TCP-2 transfer size (paper: 100 MB)")
	seed     = flag.Int64("seed", 1, "simulation seed")
	markdown = flag.Bool("markdown", false, "emit markdown comparison tables")
)

func want(id string) bool {
	if *expFlag == "all" {
		return id != "fig2" && id != "bindrate" && id != "holepunch" && id != "keepalive" // explicit-only (udp1-3 already cover fig2)
	}
	for _, e := range strings.Split(*expFlag, ",") {
		if strings.TrimSpace(e) == id {
			return true
		}
	}
	return false
}

func main() {
	flag.Parse()
	cfg := hgw.Config{Seed: *seed, Options: hgw.Options{Iterations: *iters, TransferBytes: *bytesF}}

	section := func(title string) { fmt.Printf("\n===== %s =====\n", title) }

	if want("fig2") {
		section("Figure 2: UDP-1/2/3 combined (ordered by UDP-1)")
		f1 := hgw.RunUDP1(cfg)
		f2 := hgw.RunUDP2(cfg)
		f3 := hgw.RunUDP3(cfg)
		series := map[string]map[string]float64{"UDP-1": {}, "UDP-2": {}, "UDP-3": {}}
		for _, p := range f1.Points {
			series["UDP-1"][p.Tag] = p.Median
		}
		for _, p := range f2.Points {
			series["UDP-2"][p.Tag] = p.Median
		}
		for _, p := range f3.Points {
			series["UDP-3"][p.Tag] = p.Median
		}
		fmt.Print(multiN("Figure 2", "sec", f1.Order(), series, []string{"UDP-1", "UDP-2", "UDP-3"}))
	}
	if want("bindrate") {
		section("Binding-creation rate (paper §5 future work)")
		fmt.Print(hgw.RunBindRate(cfg).Render(48, false))
	}
	if want("udp1") {
		section("Figure 3 / UDP-1: single packet, outbound only")
		f := hgw.RunUDP1(cfg)
		fmt.Print(f.Render(48, false))
		fmt.Println("paper: je et al. 30 s ... ls1 691 s; pop. median 90.00, mean 160.41")
	}
	if want("udp2") {
		section("Figure 4 / UDP-2: single packet out, multiple in")
		f := hgw.RunUDP2(cfg)
		fmt.Print(f.Render(48, false))
		fmt.Println("paper: min 54 s; pop. median 180.00, mean 174.67")
	}
	if want("udp3") {
		section("Figure 5 / UDP-3: multiple packets out- and inbound")
		f := hgw.RunUDP3(cfg)
		fmt.Print(f.Render(48, false))
		fmt.Println("paper: pop. median 181.00, mean 225.94")
	}
	if want("udp4") {
		section("UDP-4: binding and port-pair reuse (§4.1)")
		res := hgw.RunUDP4(cfg)
		pr, pn, np := hgw.UDP4Counts(res)
		for _, r := range res {
			fmt.Printf("  %-5s %-22s observed=%v\n", r.Tag, r.Class, r.ObservedPorts)
		}
		fmt.Printf("counts: preserve+reuse=%d preserve+new=%d no-preservation=%d\n", pr, pn, np)
		fmt.Println("paper: 23 preserve+reuse, 4 preserve+new, 7 no-preservation")
	}
	if want("udp5") {
		section("Figure 6 / UDP-5: per-service binding timeouts")
		figs := hgw.RunUDP5(cfg)
		names := make([]string, 0, len(figs))
		for n := range figs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Print(figs[n].Render(48, false))
		}
		fmt.Println("paper: timeouts mostly port-independent; dl8 shortens the DNS port")
	}
	if want("tcp1") {
		section("Figure 7 / TCP-1: TCP binding timeouts (log scale)")
		f := hgw.RunTCP1(cfg)
		fmt.Print(f.Render(48, true))
		fmt.Println("paper: be1 239 s shortest; 7 devices > 24 h; pop. median 59.98 min, mean 386.46 min")
	}
	if want("tcp2") || want("tcp3") {
		section("Figures 8 & 9 / TCP-2 throughput and TCP-3 delay")
		res := hgw.RunThroughput(cfg)
		fig8, fig9 := hgw.ThroughputFigures(res)
		order := orderBy(res, func(t hgw.Throughput) float64 { return t.DownMbps })
		fmt.Print(multi("Figure 8: TCP throughput", "Mb/s", order, fig8))
		fmt.Println("paper: 13 devices at wire speed; dl10/ls1 worst (~6-8 Mb/s); smc asymmetric 41/27")
		orderD := orderBy(res, func(t hgw.Throughput) float64 { return t.DelayDownMs })
		fmt.Print(multi("Figure 9: queuing delay", "msec", orderD, fig9))
		fmt.Println("paper: best ~2 ms; dl10 74 ms, ls1 110 ms; bidirectional load increases delays")
	}
	if want("tcp4") {
		section("Figure 10 / TCP-4: max bindings to one server port (log scale)")
		f := hgw.RunTCP4(cfg)
		fmt.Print(f.Render(48, true))
		fmt.Println("paper: dl9/smc 16; ng1/ap ca. 1024; pop. median 135.50, mean 259.21")
	}
	if want("icmp") || want("sctp") || want("dccp") || want("dns") {
		section("Table 2: ICMP / SCTP / DCCP / DNS")
		m := hgw.RunICMP(cfg)
		sctp := hgw.RunSCTP(cfg)
		dccp := hgw.RunDCCP(cfg)
		dns := hgw.RunDNS(cfg)
		fmt.Print(hgw.Table2(m, sctp, dccp, dns))
		summarizeTable2(m, sctp, dccp, dns)
	}
	if want("keepalive") {
		section("TCP keepalives at the RFC 1122 2 h minimum (§4.4)")
		fail := 0
		for _, r := range hgw.RunKeepalive(cfg) {
			if !r.Survived {
				fail++
				fmt.Printf("  %-5s binding lost despite keepalives\n", r.Tag)
			}
		}
		fmt.Printf("%d of 34 devices drop a kept-alive idle connection (paper: \"many\"; half time out under 1 h)\n", fail)
	}
	if want("holepunch") {
		section("UDP hole punching (related work, Ford et al.)")
		pairs := [][2]string{{"owrt", "bu1"}, {"owrt", "smc"}, {"dl2", "dl6"}, {"smc", "zy1"}}
		for _, pr := range pairs {
			r := hgw.RunHolePunch(pr[0], pr[1], *seed)
			fmt.Printf("  %-5s <-> %-5s success=%v (extA=%v extB=%v)\n", r.TagA, r.TagB, r.Success, r.ExtA, r.ExtB)
		}
		fmt.Println("punching succeeds between port-preserving NATs and fails when either side allocates fresh ports")
	}
	if want("quirks") {
		section("§4.4 quirks: TTL, Record Route, hairpinning, shared MACs")
		for _, r := range hgw.RunQuirks(cfg) {
			fmt.Printf("  %-5s ttl-dec=%-5v record-route=%-5v hairpin=%-5v same-mac=%v\n",
				r.Tag, r.DecrementsTTL, r.RecordsRoute, r.Hairpins, r.SameMAC)
		}
	}
	if *markdown {
		fmt.Println("\n(markdown mode: see EXPERIMENTS.md in the repository for the curated comparison)")
	}
}

func multiN(title, unit string, order []string, series map[string]map[string]float64, names []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s [%s]\n", title, unit)
	fmt.Fprintf(&sb, "  %-5s", "dev")
	for _, n := range names {
		fmt.Fprintf(&sb, " %10s", n)
	}
	sb.WriteString("\n")
	for _, tag := range order {
		fmt.Fprintf(&sb, "  %-5s", tag)
		for _, n := range names {
			fmt.Fprintf(&sb, " %10.1f", series[n][tag])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func orderBy(res []hgw.Throughput, key func(hgw.Throughput) float64) []string {
	cp := append([]hgw.Throughput(nil), res...)
	sort.Slice(cp, func(i, j int) bool { return key(cp[i]) < key(cp[j]) })
	out := make([]string, len(cp))
	for i, r := range cp {
		out[i] = r.Tag
	}
	return out
}

func multi(title, unit string, order []string, series map[string]map[string]float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s [%s]\n", title, unit)
	names := []string{"Upload", "Download", "Up|Down", "Down|Up"}
	fmt.Fprintf(&sb, "  %-5s %10s %10s %10s %10s\n", "dev", names[0], names[1], names[2], names[3])
	for _, tag := range order {
		fmt.Fprintf(&sb, "  %-5s", tag)
		for _, n := range names {
			fmt.Fprintf(&sb, " %10.1f", series[n][tag])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func summarizeTable2(m []hgw.ICMPMatrix, sctp, dccp []hgw.ConnResult, dns []hgw.DNSResult) {
	sctpOK, dccpOK, dnsTCPAccept, dnsTCPAnswer, viaUDP := 0, 0, 0, 0, 0
	for _, r := range sctp {
		if r.OK {
			sctpOK++
		}
	}
	for _, r := range dccp {
		if r.OK {
			dccpOK++
		}
	}
	for _, r := range dns {
		if r.TCPAccepts {
			dnsTCPAccept++
		}
		if r.TCPAnswers {
			dnsTCPAnswer++
		}
		if r.TCPViaUDP {
			viaUDP++
		}
	}
	innerUnfixed := 0
	badCsum := 0
	for _, mm := range m {
		unfixed, bad := false, false
		for k := range mm.UDP {
			if mm.UDP[k] == probe.VerdictInnerUnfixed || mm.TCP[k] == probe.VerdictInnerUnfixed {
				unfixed = true
			}
			if mm.UDP[k] == probe.VerdictInnerBadChecksum || mm.TCP[k] == probe.VerdictInnerBadChecksum {
				bad = true
			}
		}
		if unfixed {
			innerUnfixed++
		}
		if bad {
			badCsum++
		}
	}
	fmt.Printf("\nsummary: SCTP works through %d devices (paper: 18); DCCP through %d (paper: 0)\n", sctpOK, dccpOK)
	fmt.Printf("         DNS/TCP: %d accept, %d answer, %d via UDP upstream (paper: 14 / 10 / ap)\n",
		dnsTCPAccept, dnsTCPAnswer, viaUDP)
	fmt.Printf("         %d devices leave embedded ICMP headers untranslated (paper: 16); %d corrupt embedded IP checksums (paper: 2)\n",
		innerUnfixed, badCsum)
}
