// Command hgbench regenerates every table and figure of the paper's
// evaluation section and prints them in the paper's style, together
// with the population statistics the prose quotes. The experiment set,
// section titles and paper references all come from hgw.Registry().
//
//	hgbench                       # everything, quick settings
//	hgbench -exp udp1,tcp4        # a subset
//	hgbench -iters 100 -bytes 100000000   # paper-strength settings
//	hgbench -fleet 1000 -shards 8         # 1000 synthetic devices, 8 sub-testbeds
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"hgw"
)

var (
	expFlag  = flag.String("exp", "all", "comma-separated experiment ids (see hgprobe -list) or 'all'")
	tags     = flag.String("tags", "", "comma-separated device tags (default all)")
	iters    = flag.Int("iters", 5, "iterations per device (paper: 100)")
	bytesF   = flag.Int("bytes", 8<<20, "TCP-2 transfer size (paper: 100 MB)")
	seed     = flag.Int64("seed", 1, "simulation seed")
	parallel = flag.Int("parallel", 0, "max concurrent experiments (0 = default 4; affects testbed sharing)")
	markdown = flag.Bool("markdown", false, "also emit markdown tables for figure results")
	csvOut   = flag.Bool("csv", false, "emit Table 2 as CSV instead of the dot matrix")
	fleet    = flag.Int("fleet", 0, "fleet mode: measure N synthetic devices instead of the 34-device inventory")
	shards   = flag.Int("shards", 1, "partition the fleet across K concurrent sub-testbeds")
	maxprocs = flag.Int("maxprocs", 0, "max concurrent fleet shard workers (0 = NumCPU; output is identical at any value)")

	benchjson = flag.Bool("benchjson", false, "run each experiment as a benchmark and write a JSON trajectory file instead of rendering")
	benchout  = flag.String("benchout", "BENCH_pr.json", "output path for the -benchjson trajectory file")
	reportOut = flag.Bool("report", false, "print the run telemetry report after the tables")
)

// benchEntry is one benchmark row of the -benchjson trajectory file.
// The shape mirrors `go test -bench` output (name, ns/op, allocs/op)
// plus the experiment's headline reproduction metrics, so CI can diff
// trajectories across PRs.
type benchEntry struct {
	Name      string             `json:"name"`
	NsPerOp   int64              `json:"ns_op"`
	AllocsOp  uint64             `json:"allocs_op"`
	BytesOp   uint64             `json:"bytes_op"`
	Err       string             `json:"err,omitempty"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	Timestamp string             `json:"timestamp"`
}

// fleetBenchShards are the shard counts of the fleet scaling rows a
// default -benchjson run appends: hgbench/fleet/udp1/d2048/s{1,8,32}.
// The cross-PR regression test (benchdiff_test.go) reads these rows to
// assert sharding keeps beating the single-shard baseline.
var fleetBenchShards = []int{1, 8, 32}

// runBenchJSON runs every experiment individually, measuring wall
// clock and allocator traffic per run, and writes the trajectory file.
// Unless the caller benched an explicit fleet, a fleet scaling sweep
// (2048 synthetic devices at 1, 8 and 32 shards) is appended so the
// trajectory records multicore shard throughput alongside the
// inventory rows.
func runBenchJSON(ids []string, opts []hgw.Option) error {
	if len(ids) == 0 {
		for _, e := range hgw.Registry() {
			ids = append(ids, e.ID)
		}
	}
	stamp := time.Now().UTC().Format(time.RFC3339)
	var entries []benchEntry
	var before, after runtime.MemStats
	bench := func(name string, runIDs []string, runOpts []hgw.Option) {
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		results, err := hgw.Run(context.Background(), runIDs, runOpts...)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		e := benchEntry{
			Name:      name,
			NsPerOp:   elapsed.Nanoseconds(),
			AllocsOp:  after.Mallocs - before.Mallocs,
			BytesOp:   after.TotalAlloc - before.TotalAlloc,
			Timestamp: stamp,
		}
		if err != nil {
			e.Err = err.Error()
		} else if len(results) > 0 && results[0].Figure != nil {
			e.Metrics = map[string]float64{
				"pop-median": results[0].Figure.Median,
			}
		}
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %10d allocs/op\n", e.Name, e.NsPerOp, e.AllocsOp)
	}
	for _, id := range ids {
		bench("hgbench/"+id, []string{id}, opts)
	}
	if *fleet == 0 {
		for _, sh := range fleetBenchShards {
			fopts := []hgw.Option{
				hgw.WithSeed(*seed), hgw.WithIterations(1),
				hgw.WithFleet(2048), hgw.WithShards(sh),
			}
			if *maxprocs > 0 {
				fopts = append(fopts, hgw.WithMaxProcs(*maxprocs))
			}
			bench(fmt.Sprintf("hgbench/fleet/udp1/d2048/s%d", sh), []string{"udp1"}, fopts)
		}
		// One telemetry-enabled row records the cost of running the same
		// 8-shard fleet with per-shard registries and a run report
		// attached; the obs-off rows above stay the regression baseline.
		oopts := []hgw.Option{
			hgw.WithSeed(*seed), hgw.WithIterations(1),
			hgw.WithFleet(2048), hgw.WithShards(8),
			hgw.WithRunReport(func(*hgw.RunReport) {}),
		}
		if *maxprocs > 0 {
			oopts = append(oopts, hgw.WithMaxProcs(*maxprocs))
		}
		bench("hgbench/fleet/udp1/d2048/s8/obs", []string{"udp1"}, oopts)
		// One faulted row records the cost of the chaos path: the same
		// 8-shard fleet with a heavy seeded fault plan (flaps, loss,
		// corruption, blackholes and reboots at rate 0.5 per gateway).
		topts := []hgw.Option{
			hgw.WithSeed(*seed), hgw.WithIterations(1),
			hgw.WithFleet(2048), hgw.WithShards(8),
			hgw.WithFaultRate(0.5),
		}
		if *maxprocs > 0 {
			topts = append(topts, hgw.WithMaxProcs(*maxprocs))
		}
		bench("hgbench/fleet/udp1/d2048/s8/fault", []string{"udp1"}, topts)
	}
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*benchout, append(out, '\n'), 0o644)
}

func main() {
	flag.Parse()

	var ids []string // nil = the registry's default set
	if *expFlag != "all" {
		ids = strings.Split(*expFlag, ",")
	}
	opts := []hgw.Option{
		hgw.WithSeed(*seed),
		hgw.WithIterations(*iters),
		hgw.WithTransferBytes(*bytesF),
	}
	if *tags != "" {
		opts = append(opts, hgw.WithTags(strings.Split(*tags, ",")...))
	}
	if *parallel > 0 {
		opts = append(opts, hgw.WithParallelism(*parallel))
	}
	if *fleet > 0 {
		// Fleet mode: synthetic population, sharded testbeds. With -exp
		// unset the run covers hgw.FleetIDs (the UDP-1/2/3 sweeps).
		opts = append(opts, hgw.WithFleet(*fleet), hgw.WithShards(*shards))
	}
	if *maxprocs > 0 {
		opts = append(opts, hgw.WithMaxProcs(*maxprocs))
	}
	var report *hgw.RunReport
	if *reportOut {
		opts = append(opts, hgw.WithRunReport(func(rep *hgw.RunReport) { report = rep }))
	}

	if *benchjson {
		if err := runBenchJSON(ids, opts); err != nil {
			fmt.Fprintln(os.Stderr, "hgbench: benchjson:", err)
			os.Exit(1)
		}
		return
	}

	// Render whatever completed even when some experiments failed, then
	// report the error. The Table 2 components (icmp/sctp/dccp/dns)
	// print once, combined, like the paper.
	results, err := hgw.Run(context.Background(), ids, opts...)
	var standalone hgw.Results
	for _, r := range results {
		if !r.IsTable2Component() {
			standalone = append(standalone, r)
		}
	}
	fmt.Print(standalone.Render())

	if *csvOut {
		if ok, csvErr := results.Table2CSV(os.Stdout); csvErr != nil {
			fmt.Fprintln(os.Stderr, "hgbench: table2 csv:", csvErr)
			os.Exit(1)
		} else if !ok {
			fmt.Fprintln(os.Stderr, "hgbench: -csv needs at least one of icmp, sctp, dccp, dns")
		}
	} else if table, ok := results.Table2(); ok {
		fmt.Printf("\n===== Table 2: ICMP / SCTP / DCCP / DNS combined =====\n")
		fmt.Print(table)
	}

	if *markdown {
		for _, r := range results {
			if r.Figure == nil {
				continue
			}
			fmt.Printf("\n===== %s (markdown) =====\n", r.Title)
			fmt.Print(r.Figure.Markdown())
		}
	}

	if report != nil {
		fmt.Printf("\n===== Run telemetry =====\n")
		fmt.Print(report.Render())
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, "hgbench:", err)
		os.Exit(1)
	}
}
