// Command hglist prints the emulated device inventory — the paper's
// Table 1 — with the key calibrated behaviors of each profile, followed
// by the experiment catalog from the registry. -json emits the registry
// metadata as JSON instead, in the same shape hgwd serves at
// GET /v1/experiments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hgw"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the experiment catalog as JSON (the GET /v1/experiments shape)")
	flag.Parse()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		err := enc.Encode(struct {
			Experiments []hgw.ExperimentInfo `json:"experiments"`
		}{hgw.RegistryInfo()})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hglist:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("%-5s %-9s %-22s %-22s %7s %7s %7s %8s %6s\n",
		"tag", "vendor", "model", "firmware", "udp1[s]", "udp2[s]", "udp3[s]", "tcp1", "maxTCP")
	for _, p := range hgw.Devices() {
		tcp1 := ""
		if p.NAT.TCPEstablished == 0 {
			tcp1 = ">24h"
		} else {
			tcp1 = fmt.Sprintf("%.0fm", p.NAT.TCPEstablished.Minutes())
		}
		fmt.Printf("%-5s %-9s %-22.22s %-22.22s %7.0f %7.0f %7.0f %8s %6d\n",
			p.Tag, p.Vendor, p.Model, p.Firmware,
			p.NAT.UDP.Outbound.Seconds(),
			p.NAT.UDP.Inbound.Seconds(),
			p.NAT.UDP.Bidir.Seconds(),
			tcp1, p.NAT.MaxTCPBindings)
	}

	fmt.Printf("\nExperiments (run with hgprobe -exp <id>):\n")
	fmt.Printf("%-10s %-10s %-12s %s\n", "id", "ref", "unit", "title")
	for _, e := range hgw.Registry() {
		unit := e.Unit
		if unit == "" {
			unit = "-"
		}
		fmt.Printf("%-10s %-10s %-12s %s\n", e.ID, e.Ref, unit, e.Title)
	}
}
