// Command hglist prints the emulated device inventory — the paper's
// Table 1 — with the key calibrated behaviors of each profile, followed
// by the experiment catalog from the registry.
package main

import (
	"fmt"

	"hgw"
)

func main() {
	fmt.Printf("%-5s %-9s %-22s %-22s %7s %7s %7s %8s %6s\n",
		"tag", "vendor", "model", "firmware", "udp1[s]", "udp2[s]", "udp3[s]", "tcp1", "maxTCP")
	for _, p := range hgw.Devices() {
		tcp1 := ""
		if p.NAT.TCPEstablished == 0 {
			tcp1 = ">24h"
		} else {
			tcp1 = fmt.Sprintf("%.0fm", p.NAT.TCPEstablished.Minutes())
		}
		fmt.Printf("%-5s %-9s %-22.22s %-22.22s %7.0f %7.0f %7.0f %8s %6d\n",
			p.Tag, p.Vendor, p.Model, p.Firmware,
			p.NAT.UDP.Outbound.Seconds(),
			p.NAT.UDP.Inbound.Seconds(),
			p.NAT.UDP.Bidir.Seconds(),
			tcp1, p.NAT.MaxTCPBindings)
	}

	fmt.Printf("\nExperiments (run with hgprobe -exp <id>):\n")
	fmt.Printf("%-10s %-10s %-12s %s\n", "id", "ref", "unit", "title")
	for _, e := range hgw.Registry() {
		unit := e.Unit
		if unit == "" {
			unit = "-"
		}
		fmt.Printf("%-10s %-10s %-12s %s\n", e.ID, e.Ref, unit, e.Title)
	}
}
