// Command hgprobe runs one of the paper's measurements against selected
// gateway devices.
//
//	hgprobe -exp udp1 -tags je,ls1,owrt -iters 10
//
// Experiments: udp1 udp2 udp3 udp4 udp5 tcp1 tcp2 tcp4 icmp sctp dccp
// dns quirks.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"hgw"
)

func main() {
	exp := flag.String("exp", "udp1", "experiment id")
	tags := flag.String("tags", "", "comma-separated device tags (default all)")
	iters := flag.Int("iters", 3, "iterations per device")
	seed := flag.Int64("seed", 1, "simulation seed")
	bytes := flag.Int("bytes", 8<<20, "transfer size for tcp2")
	flag.Parse()

	cfg := hgw.Config{Seed: *seed, Options: hgw.Options{Iterations: *iters, TransferBytes: *bytes}}
	if *tags != "" {
		cfg.Tags = strings.Split(*tags, ",")
	}

	switch *exp {
	case "udp1":
		fmt.Print(hgw.RunUDP1(cfg).Render(50, false))
	case "udp2":
		fmt.Print(hgw.RunUDP2(cfg).Render(50, false))
	case "udp3":
		fmt.Print(hgw.RunUDP3(cfg).Render(50, false))
	case "udp4":
		res := hgw.RunUDP4(cfg)
		for _, r := range res {
			fmt.Printf("%-5s %-22s src=%d observed=%v\n", r.Tag, r.Class, r.SourcePort, r.ObservedPorts)
		}
		pr, pn, np := hgw.UDP4Counts(res)
		fmt.Printf("preserve+reuse=%d preserve+new=%d no-preservation=%d\n", pr, pn, np)
	case "udp5":
		figs := hgw.RunUDP5(cfg)
		names := make([]string, 0, len(figs))
		for n := range figs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Print(figs[n].Render(50, false))
		}
	case "tcp1":
		fmt.Print(hgw.RunTCP1(cfg).Render(50, true))
	case "tcp2", "tcp3":
		res := hgw.RunThroughput(cfg)
		fmt.Printf("%-5s %9s %9s %9s %9s %9s %9s\n", "tag", "up", "down", "biUp", "biDown", "dlyUp", "dlyDown")
		for _, r := range res {
			fmt.Printf("%-5s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f\n",
				r.Tag, r.UpMbps, r.DownMbps, r.BiUpMbps, r.BiDownMbps, r.DelayUpMs, r.DelayDownMs)
		}
	case "tcp4":
		fmt.Print(hgw.RunTCP4(cfg).Render(50, true))
	case "icmp":
		m := hgw.RunICMP(cfg)
		fmt.Print(hgw.Table2(m, nil, nil, nil))
	case "sctp":
		for _, r := range hgw.RunSCTP(cfg) {
			fmt.Printf("%-5s sctp=%v\n", r.Tag, r.OK)
		}
	case "dccp":
		for _, r := range hgw.RunDCCP(cfg) {
			fmt.Printf("%-5s dccp=%v\n", r.Tag, r.OK)
		}
	case "dns":
		for _, r := range hgw.RunDNS(cfg) {
			fmt.Printf("%-5s udp=%v tcp-accept=%v tcp-answer=%v via-udp=%v\n",
				r.Tag, r.UDPAnswers, r.TCPAccepts, r.TCPAnswers, r.TCPViaUDP)
		}
	case "quirks":
		for _, r := range hgw.RunQuirks(cfg) {
			fmt.Printf("%-5s ttl-dec=%v record-route=%v hairpin=%v same-mac=%v\n",
				r.Tag, r.DecrementsTTL, r.RecordsRoute, r.Hairpins, r.SameMAC)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
