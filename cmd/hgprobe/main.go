// Command hgprobe runs registry experiments against selected gateway
// devices.
//
//	hgprobe -exp udp1 -tags je,ls1,owrt -iters 10
//	hgprobe -exp icmp,sctp,dccp,dns          # shares one testbed
//	hgprobe -exp udp1 -fleet 200 -shards 4   # synthetic fleet sweep
//	hgprobe -list                            # the experiment catalog
//	hgprobe -exp udp1 -fleet 200 -shards 4 -stats   # plus run telemetry
//	hgprobe -exp udp3 -fleet 200 -shards 4 -faults 0.5 -retries 2  # chaos
//
// -faults r enables deterministic fault injection: every gateway
// draws link flaps, loss windows, corruption windows, WAN blackholes
// and reboots at mean rate r per class from a seeded plan (equal
// seeds give byte-identical faulted output at any -maxprocs).
// -retries n gives each probe exchange a retry budget so experiments
// report degraded-but-valid figures under injected loss.
//
// Every id in hgw.Registry() works, including bindrate, keepalive and
// holepunch; -json emits the result envelopes as JSON and -stats
// appends the deterministic run report (counters, gauges, histograms
// and sampled shard traces).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hgw"
)

func main() {
	exp := flag.String("exp", "udp1", "comma-separated experiment ids (see -list)")
	tags := flag.String("tags", "", "comma-separated device tags (default all)")
	iters := flag.Int("iters", 3, "iterations per device")
	seed := flag.Int64("seed", 1, "simulation seed")
	bytes := flag.Int("bytes", 8<<20, "transfer size for tcp2")
	parallel := flag.Int("parallel", 0, "max concurrent experiments (0 = default 4; affects testbed sharing)")
	fleet := flag.Int("fleet", 0, "fleet mode: measure N synthetic devices instead of the 34-device inventory")
	shards := flag.Int("shards", 1, "partition the fleet across K concurrent sub-testbeds")
	maxprocs := flag.Int("maxprocs", 0, "max concurrent fleet shard workers (0 = NumCPU; output is identical at any value)")
	faults := flag.Float64("faults", 0, "fault injection: mean seeded faults per gateway per class (0 = off)")
	retries := flag.Int("retries", 0, "probe exchange retry budget under injected loss")
	jsonOut := flag.Bool("json", false, "emit result envelopes as JSON")
	statsOut := flag.Bool("stats", false, "print the run telemetry report after results")
	verbose := flag.Bool("v", false, "report per-experiment progress on stderr")
	list := flag.Bool("list", false, "list registered experiments and exit")
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %-10s %s\n", "id", "ref", "title")
		for _, e := range hgw.Registry() {
			fmt.Printf("%-10s %-10s %s\n", e.ID, e.Ref, e.Title)
		}
		return
	}

	opts := []hgw.Option{
		hgw.WithSeed(*seed),
		hgw.WithIterations(*iters),
		hgw.WithTransferBytes(*bytes),
	}
	if *tags != "" {
		opts = append(opts, hgw.WithTags(strings.Split(*tags, ",")...))
	}
	if *parallel > 0 {
		opts = append(opts, hgw.WithParallelism(*parallel))
	}
	if *faults > 0 {
		opts = append(opts, hgw.WithFaultRate(*faults))
	}
	if *retries > 0 {
		opts = append(opts, hgw.WithRetries(*retries))
	}
	if *fleet > 0 {
		opts = append(opts, hgw.WithFleet(*fleet), hgw.WithShards(*shards))
		if *maxprocs > 0 {
			opts = append(opts, hgw.WithMaxProcs(*maxprocs))
		}
		if *verbose {
			opts = append(opts, hgw.WithDeviceResults(func(ev hgw.DeviceEvent) {
				fmt.Fprintf(os.Stderr, "  %-10s shard %d %s done\n", ev.ExperimentID, ev.Shard, ev.Result.Tag)
			}))
		}
	}
	if *verbose {
		opts = append(opts, hgw.WithProgress(func(p hgw.Progress) {
			state := "start"
			if p.Done {
				state = "done"
			}
			if p.Kind == hgw.ProgressShard {
				fmt.Fprintf(os.Stderr, "[%d/%d] shard %-4d %s\n", p.Index+1, p.Total, p.Shard, state)
				return
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-10s %s\n", p.Index+1, p.Total, p.ID, state)
		}))
	}
	var report *hgw.RunReport
	if *statsOut {
		opts = append(opts, hgw.WithRunReport(func(rep *hgw.RunReport) { report = rep }))
	}

	// Print whatever completed before reporting a failure: Run returns
	// the finished results alongside the error.
	results, err := hgw.Run(context.Background(), strings.Split(*exp, ","), opts...)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(results); encErr != nil {
			fmt.Fprintln(os.Stderr, "hgprobe:", encErr)
			os.Exit(1)
		}
	} else {
		for _, r := range results {
			fmt.Print(r.Render())
		}
	}
	if report != nil {
		// With -json the report goes to stderr so stdout stays parseable.
		out := os.Stdout
		if *jsonOut {
			out = os.Stderr
		}
		fmt.Fprint(out, report.Render())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hgprobe:", err)
		os.Exit(2)
	}
}
