// Command hgwlint runs the repo's invariant analyzers (internal/lint)
// over the module: detlint (determinism, DESIGN.md §8), poollint
// (buffer ownership, DESIGN.md §9), exhaustlint (enum switch
// exhaustiveness) and droplint (drop-reason registry discipline).
//
// Standalone:
//
//	hgwlint ./...              # whole module (the CI lint job)
//	hgwlint ./internal/nat     # one package
//	hgwlint -list              # describe the analyzers
//	hgwlint -analyzers detlint,droplint ./...
//
// It also speaks enough of the cmd/go vettool protocol to run as
//
//	go vet -vettool=$(which hgwlint) ./...
//
// (-V=full / -flags / *.cfg single-unit invocations); the standalone
// mode is the supported entry point, the vettool mode a convenience.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hgw/internal/lint"
)

func main() {
	// The vettool protocol invokes the tool with -V=full (version for
	// the build cache), -flags (supported flags as JSON) or a single
	// *.cfg argument per package unit. Handle those before flag.Parse
	// so the standalone flags stay separate.
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			fmt.Println("hgwlint version 1 (stdlib go/analysis)")
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		os.Exit(vettool(args[n-1]))
	}

	var (
		list      = flag.Bool("list", false, "describe the analyzers and exit")
		analyzers = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := lint.Analyzers()
	if *analyzers != "" {
		suite = suite[:0]
		for _, name := range strings.Split(*analyzers, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fatalf("unknown analyzer %q (try -list)", name)
			}
			suite = append(suite, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fatalf("%v", err)
	}
	modPath, err := lint.ModulePath(root)
	if err != nil {
		fatalf("%v", err)
	}
	loader := lint.NewLoader(root, modPath)

	var pkgs []*lint.Package
	for _, pat := range patterns {
		got, err := loadPattern(loader, root, modPath, pat)
		if err != nil {
			fatalf("%v", err)
		}
		pkgs = append(pkgs, got...)
	}

	diags, err := lint.Run(pkgs, suite)
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range diags {
		fmt.Println(rel(root, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hgwlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hgwlint: "+format+"\n", args...)
	os.Exit(2)
}

// moduleRoot ascends from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// loadPattern resolves one package pattern: "./..." (whole module),
// "dir/..." (subtree), or a single directory / import path.
func loadPattern(loader *lint.Loader, root, modPath, pat string) ([]*lint.Package, error) {
	if pat == "./..." || pat == "all" {
		return loader.LoadAll()
	}
	clean := strings.TrimSuffix(pat, "/...")
	subtree := clean != pat
	var ipath string
	switch {
	case clean == ".":
		ipath = modPath
	case strings.HasPrefix(clean, "./"):
		ipath = modPath + "/" + filepath.ToSlash(strings.TrimPrefix(clean, "./"))
	case clean == modPath || strings.HasPrefix(clean, modPath+"/"):
		ipath = clean
	default:
		ipath = modPath + "/" + filepath.ToSlash(clean)
	}
	if !subtree {
		return loader.LoadPaths([]string{ipath})
	}
	// Subtree: enumerate directories below it.
	relDir := strings.TrimPrefix(strings.TrimPrefix(ipath, modPath), "/")
	var paths []string
	base := filepath.Join(root, filepath.FromSlash(relDir))
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		name := d.Name()
		if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rel, _ := filepath.Rel(root, path)
		if hasGo(path) {
			paths = append(paths, modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return loader.LoadPaths(paths)
}

func hasGo(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// rel renders a diagnostic with a root-relative filename.
func rel(root string, d lint.Diagnostic) string {
	pos := d.Position
	if r, err := filepath.Rel(root, pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		pos.Filename = r
	}
	return fmt.Sprintf("%s: %s (%s)", pos, d.Message, d.Analyzer)
}

// vetConfig is the JSON unit description cmd/go hands a vettool.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	ModulePath                string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vettool analyzes one build unit the way x/tools' unitchecker does:
// parse the unit's files, type-check against the export data cmd/go
// already produced, run the suite, print findings to stderr.
func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hgwlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// cmd/go caches vet results keyed on the output file; it must exist
	// even though hgwlint exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("hgwlint"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		files = append(files, f)
	}

	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: vetImporter{gc: gc, importMap: cfg.ImportMap},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	mod := cfg.ModulePath
	if mod == "" {
		mod = "hgw"
	}
	pkg := &lint.Package{
		PkgPath:   cfg.ImportPath,
		Dir:       cfg.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
		LocalFunc: func(tp *types.Package) bool {
			return tp.Path() == mod || strings.HasPrefix(tp.Path(), mod+"/")
		},
	}
	diags, err := lint.Run([]*lint.Package{pkg}, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Position, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

type vetImporter struct {
	gc        types.Importer
	importMap map[string]string
}

func (v vetImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := v.importMap[path]; ok {
		path = mapped
	}
	return v.gc.Import(path)
}
