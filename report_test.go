package hgw_test

import (
	"context"
	"strings"
	"testing"

	"hgw"
	"hgw/internal/obs"
)

// TestFleetRunReport checks the shape and content of a fleet run's
// telemetry report: one section per shard in shard order, device
// counts matching the partition, simulator/NAT counters that actually
// moved, shard traces bracketed by start/merge markers, and a merged
// total consistent with the per-shard sections.
func TestFleetRunReport(t *testing.T) {
	var rep *hgw.RunReport
	r := hgw.NewRunner(
		hgw.WithSeed(7), hgw.WithFleet(64), hgw.WithShards(4),
		hgw.WithIterations(1),
		hgw.WithRunReport(func(got *hgw.RunReport) { rep = got }),
	)
	if _, err := r.Run(context.Background(), []string{"udp1"}); err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("WithRunReport callback never fired")
	}
	if r.Report() != rep {
		t.Error("Runner.Report() does not return the delivered report")
	}
	if !rep.Fleet || rep.Devices != 64 {
		t.Errorf("report header = fleet %v devices %d, want fleet 64", rep.Fleet, rep.Devices)
	}
	if len(rep.Shards) != 4 {
		t.Fatalf("report has %d shard sections, want 4", len(rep.Shards))
	}
	devices := 0
	var fired, created uint64
	for i, sh := range rep.Shards {
		if sh.Index != i {
			t.Errorf("shard section %d has index %d (merge order violated)", i, sh.Index)
		}
		if sh.Devices != 16 {
			t.Errorf("shard %d devices = %d, want 16", i, sh.Devices)
		}
		devices += sh.Devices
		if sh.SimEndNS <= 0 {
			t.Errorf("shard %d sim end = %d, want > 0", i, sh.SimEndNS)
		}
		if sh.Metrics.Counters["sim_events_fired"] == 0 {
			t.Errorf("shard %d fired no simulator events", i)
		}
		if sh.Metrics.Counters["nat_bindings_created"] == 0 {
			t.Errorf("shard %d created no NAT bindings", i)
		}
		fired += sh.Metrics.Counters["sim_events_fired"]
		created += sh.Metrics.Counters["nat_bindings_created"]
		if len(sh.Trace) == 0 {
			t.Fatalf("shard %d has no trace", i)
		}
		if first := sh.Trace[0]; first.Kind != "shard_start" || first.Arg != uint32(i) {
			t.Errorf("shard %d trace starts with %+v, want shard_start/%d", i, first, i)
		}
		if last := sh.Trace[len(sh.Trace)-1]; last.Kind != "shard_merge" || int64(last.AtNS) != sh.SimEndNS {
			t.Errorf("shard %d trace ends with %+v, want shard_merge at sim end %d", i, last, sh.SimEndNS)
		}
	}
	if devices != 64 {
		t.Errorf("shard device counts sum to %d, want 64", devices)
	}
	if got := rep.Totals.Counters["sim_events_fired"]; got != fired {
		t.Errorf("merged sim_events_fired = %d, want per-shard sum %d", got, fired)
	}
	if got := rep.Totals.Counters["nat_bindings_created"]; got != created {
		t.Errorf("merged nat_bindings_created = %d, want per-shard sum %d", got, created)
	}
	// Merged totals carry no trace; canonical form excludes the only
	// machine-dependent fields.
	canon := rep.Canonical()
	if strings.Contains(canon, "\"wall_ms\": 0") == false {
		t.Error("canonical report does not zero wall_ms")
	}
	if rep.Render() == "" {
		t.Error("report renders empty")
	}
}

// TestInventoryRunReport checks inventory (non-fleet) runs report one
// section per shared-testbed lane, with lane registries accounting the
// lane's whole build+probe trajectory.
func TestInventoryRunReport(t *testing.T) {
	var rep *hgw.RunReport
	r := hgw.NewRunner(
		hgw.WithSeed(3), hgw.WithTags("al", "ap"),
		hgw.WithParallelism(2), hgw.WithIterations(1),
		hgw.WithRunReport(func(got *hgw.RunReport) { rep = got }),
	)
	if _, err := r.Run(context.Background(), []string{"udp1", "udp3"}); err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("no report delivered")
	}
	if rep.Fleet {
		t.Error("inventory report marked fleet")
	}
	if len(rep.Shards) != 2 {
		t.Fatalf("report has %d lane sections, want 2", len(rep.Shards))
	}
	for i, lane := range rep.Shards {
		if lane.Index != i {
			t.Errorf("lane section %d has index %d", i, lane.Index)
		}
		if lane.Metrics.Counters["sim_events_fired"] == 0 {
			t.Errorf("lane %d fired no simulator events", i)
		}
	}
	if rep.Totals.Counters["nat_translations"] == 0 {
		t.Error("merged totals show no NAT translations")
	}
}

// TestFleetShardProgress checks fleet runs emit ProgressShard events:
// one start per shard (scheduling order) and one done per shard in
// strict shard index order, without disturbing the experiment events'
// exactly-one-Done contract.
func TestFleetShardProgress(t *testing.T) {
	var starts, dones []int
	expDone := map[string]int{}
	_, err := hgw.Run(context.Background(), []string{"udp1"},
		hgw.WithSeed(7), hgw.WithFleet(32), hgw.WithShards(4), hgw.WithIterations(1),
		hgw.WithProgress(func(p hgw.Progress) {
			if p.Kind != hgw.ProgressShard {
				if p.Done {
					expDone[p.ID]++
				}
				return
			}
			if p.Done {
				dones = append(dones, p.Shard)
			} else {
				starts = append(starts, p.Shard)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 4 {
		t.Errorf("shard start events = %v, want one per shard", starts)
	}
	if len(dones) != 4 {
		t.Fatalf("shard done events = %v, want one per shard", dones)
	}
	for i, s := range dones {
		if s != i {
			t.Fatalf("shard done order = %v, want strict shard order", dones)
		}
	}
	if expDone["udp1"] != 1 {
		t.Errorf("experiment done events = %v, want exactly one for udp1", expDone)
	}
}

// TestRunReleasesResources is the goroutine-leak tripwire: after a
// completed fleet run (whose shards each spawn dozens of simulator
// process goroutines) the process-wide live-shard and sim-proc gauges
// must return to their pre-run baseline — every shard was Shutdown and
// every parked server goroutine unwound.
func TestRunReleasesResources(t *testing.T) {
	base := obs.Proc.Snapshot()
	_, err := hgw.Run(context.Background(), []string{"udp1"},
		hgw.WithSeed(9), hgw.WithFleet(32), hgw.WithShards(4),
		hgw.WithIterations(1), hgw.WithRunReport(nil))
	if err != nil {
		t.Fatal(err)
	}
	after := obs.Proc.Snapshot()
	if after.LiveShards != base.LiveShards {
		t.Errorf("live shards %d -> %d: a shard outlived its run", base.LiveShards, after.LiveShards)
	}
	if after.SimProcs != base.SimProcs {
		t.Errorf("sim procs %d -> %d: simulator goroutines leaked", base.SimProcs, after.SimProcs)
	}
	if after.SimProcs < 0 || after.LiveShards < 0 {
		t.Errorf("gauges went negative: procs %d shards %d", after.SimProcs, after.LiveShards)
	}
}
