module hgw

go 1.24
