package hgw

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrUnknownExperiment is the sentinel wrapped by every unknown-id
// error; test with errors.Is.
var ErrUnknownExperiment = errors.New("unknown experiment")

// UnknownExperimentError reports a lookup of an id that is not in the
// registry. It unwraps to ErrUnknownExperiment.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return fmt.Sprintf("unknown experiment %q (known: %s)", e.ID, strings.Join(ExperimentIDs(), " "))
}

// Unwrap makes errors.Is(err, ErrUnknownExperiment) hold.
func (e *UnknownExperimentError) Unwrap() error { return ErrUnknownExperiment }

var (
	regMu    sync.RWMutex
	regOrder []string
	regByID  = map[string]*Experiment{}
	// regAliases maps alternate ids from the paper's prose onto their
	// canonical experiment.
	regAliases = map[string]string{
		"tcp3":       "tcp2", // Figure 9 data comes from the tcp2 transfers
		"throughput": "tcp2",
	}
)

// Register adds an experiment to the package registry. Registering a
// nil experiment, an empty or duplicate id, or a nil run function
// panics: registration happens at init time and a broken descriptor is
// a programming error.
func Register(e *Experiment) {
	if e == nil || e.ID == "" || e.Run == nil {
		panic("hgw: Register: experiment needs an ID and a Run function")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByID[e.ID]; dup {
		panic("hgw: Register: duplicate experiment id " + e.ID)
	}
	if _, alias := regAliases[e.ID]; alias {
		panic("hgw: Register: id " + e.ID + " collides with an alias")
	}
	regByID[e.ID] = e
	regOrder = append(regOrder, e.ID)
}

// Registry returns every registered experiment in registration order
// (the paper's presentation order for the built-ins).
func Registry() []*Experiment {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Experiment, len(regOrder))
	for i, id := range regOrder {
		out[i] = regByID[id]
	}
	return out
}

// ExperimentIDs returns the registered ids in registration order.
func ExperimentIDs() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

// DefaultIDs returns the ids a Run with no explicit list executes:
// every registered experiment not marked ExplicitOnly.
func DefaultIDs() []string {
	var out []string
	for _, e := range Registry() {
		if !e.ExplicitOnly {
			out = append(out, e.ID)
		}
	}
	return out
}

// FleetIDs returns the ids a fleet run executes by default: the
// UDP-1/2/3 timeout sweeps, whose population medians are the paper's
// headline statistics. Every experiment with a Sweep (also tcp1, tcp4
// and bindrate) can be requested explicitly in fleet mode.
func FleetIDs() []string {
	return []string{"udp1", "udp2", "udp3"}
}

// ExperimentInfo is the JSON-friendly registry metadata for one
// experiment: the descriptor fields without the run functions. It is
// the shape hgwd serves at GET /v1/experiments and hglist -json emits.
type ExperimentInfo struct {
	ID           string   `json:"id"`
	Title        string   `json:"title"`
	Unit         string   `json:"unit,omitempty"`
	Ref          string   `json:"ref,omitempty"`
	Note         string   `json:"note,omitempty"`
	LogScale     bool     `json:"log_scale,omitempty"`
	Standalone   bool     `json:"standalone,omitempty"`
	ExplicitOnly bool     `json:"explicit_only,omitempty"`
	FleetCapable bool     `json:"fleet_capable,omitempty"`
	Aliases      []string `json:"aliases,omitempty"`
}

// RegistryInfo returns the registry metadata in registration order.
func RegistryInfo() []ExperimentInfo {
	regMu.RLock()
	aliases := map[string][]string{}
	for alias, canonical := range regAliases {
		aliases[canonical] = append(aliases[canonical], alias)
	}
	regMu.RUnlock()
	//hgwlint:allow detlint each alias list is sorted in place; per-key work commutes across iteration orders
	for _, as := range aliases {
		sort.Strings(as)
	}
	exps := Registry()
	out := make([]ExperimentInfo, len(exps))
	for i, e := range exps {
		out[i] = ExperimentInfo{
			ID:           e.ID,
			Title:        e.Title,
			Unit:         e.Unit,
			Ref:          e.Ref,
			Note:         e.Note,
			LogScale:     e.LogScale,
			Standalone:   e.Standalone,
			ExplicitOnly: e.ExplicitOnly,
			FleetCapable: e.Sweep != nil,
			Aliases:      aliases[e.ID],
		}
	}
	return out
}

// Lookup resolves an id (or alias) to its experiment. Unknown ids
// return an *UnknownExperimentError wrapping ErrUnknownExperiment.
func Lookup(id string) (*Experiment, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if canonical, ok := regAliases[id]; ok {
		id = canonical
	}
	e, ok := regByID[id]
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return e, nil
}
