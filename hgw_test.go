package hgw_test

import (
	"strings"
	"testing"

	"hgw"
)

// TestEndToEndSmall is the end-to-end reproduction check on a small
// device subset; the full-population run lives in the benchmarks and
// cmd/hgbench.
func TestEndToEndSmall(t *testing.T) {
	cfg := hgw.Config{
		Tags:    []string{"je", "be2", "owrt", "nw1"},
		Options: hgw.Options{Iterations: 2},
	}
	f1 := hgw.RunUDP1(cfg)
	if len(f1.Points) != 4 {
		t.Fatalf("points = %d", len(f1.Points))
	}
	if f1.Points[0].Tag != "je" && f1.Points[0].Tag != "owrt" {
		t.Errorf("shortest UDP-1 = %s, want je/owrt (30 s)", f1.Points[0].Tag)
	}
	if f1.Points[3].Tag != "be2" {
		t.Errorf("longest UDP-1 = %s, want be2", f1.Points[3].Tag)
	}

	m := hgw.RunICMP(cfg)
	dns := hgw.RunDNS(cfg)
	sctp := hgw.RunSCTP(cfg)
	dccp := hgw.RunDCCP(cfg)
	table := hgw.Table2(m, sctp, dccp, dns)
	if !strings.Contains(table, "owrt") || !strings.Contains(table, "•") {
		t.Errorf("table 2 rendering broken:\n%s", table)
	}
}

func TestDevicesMatchTable1(t *testing.T) {
	devs := hgw.Devices()
	if len(devs) != 34 {
		t.Fatalf("devices = %d, want 34", len(devs))
	}
	seen := map[string]bool{}
	for _, d := range devs {
		if d.Tag == "" || d.Vendor == "" || d.Model == "" {
			t.Errorf("incomplete profile: %+v", d)
		}
		if seen[d.Tag] {
			t.Errorf("duplicate tag %s", d.Tag)
		}
		seen[d.Tag] = true
	}
	for _, tag := range []string{"al", "ap", "as1", "be1", "be2", "bu1",
		"dl1", "dl2", "dl3", "dl4", "dl5", "dl6", "dl7", "dl8", "dl9", "dl10",
		"ed", "je", "ls1", "ls2", "ls3", "ls5", "owrt", "to",
		"ng1", "ng2", "ng3", "ng4", "ng5", "nw1", "smc", "te", "we", "zy1"} {
		if !seen[tag] {
			t.Errorf("missing paper tag %s", tag)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := hgw.Config{Tags: []string{"je", "ls1"}, Seed: 42, Options: hgw.Options{Iterations: 2}}
	a := hgw.RunUDP1(cfg)
	b := hgw.RunUDP1(cfg)
	if len(a.Points) != len(b.Points) {
		t.Fatal("length mismatch")
	}
	for i := range a.Points {
		if a.Points[i].Median != b.Points[i].Median {
			t.Fatalf("run differs at %s: %v vs %v", a.Points[i].Tag, a.Points[i].Median, b.Points[i].Median)
		}
	}
}
